// Package figures regenerates every table and figure of the paper's
// evaluation from the models in this repository, as report.Table and
// report.Plot values ready for text or CSV output.  It is the single
// source of truth used by cmd/figures, the benchmarks and EXPERIMENTS.md.
package figures

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ecc"
	"repro/internal/epr"
	"repro/internal/fidelity"
	"repro/internal/phys"
	"repro/internal/purify"
	"repro/internal/report"
)

// Table1 reproduces the paper's Table 1: time constants for ion-trap
// operations, including the derived tgen/ttprt/tprfy entries.
func Table1(p phys.Params) *report.Table {
	t := report.NewTable("Table 1: Time constants for operations in ion trap technology",
		"Operation", "Variable", "Time (µs)")
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	t.AddRow("One-Qubit Gate", "t1q", us(p.Times.OneQubitGate))
	t.AddRow("Two-Qubit Gate", "t2q", us(p.Times.TwoQubitGate))
	t.AddRow("Move One Cell", "tmv", us(p.Times.MoveCell))
	t.AddRow("Measure", "tms", us(p.Times.Measure))
	t.AddRow("Generate", "tgen", us(p.GenerateTime()))
	t.AddRow("Teleport", "ttprt", us(p.TeleportTime(0)))
	t.AddRow("Purify (round)", "tprfy", us(p.PurifyRoundTime(0)))
	return t
}

// Table2 reproduces the paper's Table 2: error probabilities for ion-trap
// operations.
func Table2(p phys.Params) *report.Table {
	t := report.NewTable("Table 2: Error probability constants for ion trap technology",
		"Operation", "Variable", "Error Probability")
	t.AddRow("One-Qubit Gate", "p1q", p.Errors.OneQubitGate)
	t.AddRow("Two-Qubit Gate", "p2q", p.Errors.TwoQubitGate)
	t.AddRow("Move One Cell", "pmv", p.Errors.MoveCell)
	t.AddRow("Measure", "pms", p.Errors.Measure)
	return t
}

// Fig8InitialFidelities are the starting fidelities plotted in Figure 8.
var Fig8InitialFidelities = []float64{0.99, 0.999, 0.9999}

// Fig8 reproduces Figure 8: EPR error after purification rounds for the
// DEJMPS and BBPSSW protocols.
func Fig8(p phys.Params, maxRounds int) (*report.Table, *report.Plot) {
	pts := purify.Fig8Series(p, Fig8InitialFidelities, maxRounds)
	t := report.NewTable("Figure 8: EPR error vs purification rounds",
		"Protocol", "InitialFidelity", "Round", "Error")
	plot := report.NewPlot("Figure 8: error after purification rounds (lower is better)",
		"purification rounds", "EPR error (1-fidelity)")
	plot.LogY = true

	curves := map[string]*report.Series{}
	var order []string
	for _, pt := range pts {
		t.AddRow(pt.Protocol, pt.InitialFidelity, pt.Round, pt.Error)
		key := fmt.Sprintf("%s F0=%g", pt.Protocol, pt.InitialFidelity)
		c, ok := curves[key]
		if !ok {
			c = &report.Series{Name: key}
			curves[key] = c
			order = append(order, key)
		}
		c.X = append(c.X, float64(pt.Round))
		c.Y = append(c.Y, pt.Error)
	}
	for _, key := range order {
		plot.Add(*curves[key])
	}
	return t, plot
}

// Fig9InitialErrors are the initial EPR error curves of Figure 9.
var Fig9InitialErrors = []float64{1e-4, 1e-5, 1e-6, 1e-7, 1e-8}

// Fig9 reproduces Figure 9: EPR error versus teleportation hop count.
func Fig9(p phys.Params, maxHops int) (*report.Table, *report.Plot) {
	pts := epr.Fig9Series(p, Fig9InitialErrors, maxHops)
	t := report.NewTable("Figure 9: EPR error at logical qubit vs teleportation hops",
		"InitialError", "Hops", "Error")
	plot := report.NewPlot("Figure 9: error vs teleport distance (threshold 7.5e-5)",
		"distance in teleportation hops", "EPR error (1-fidelity)")
	plot.LogY = true

	curves := map[float64]*report.Series{}
	var order []float64
	for _, pt := range pts {
		t.AddRow(pt.InitialError, pt.Hops, pt.Error)
		c, ok := curves[pt.InitialError]
		if !ok {
			c = &report.Series{Name: fmt.Sprintf("initial error %.0e", pt.InitialError)}
			curves[pt.InitialError] = c
			order = append(order, pt.InitialError)
		}
		c.X = append(c.X, float64(pt.Hops))
		c.Y = append(c.Y, pt.Error)
	}
	for _, e := range order {
		plot.Add(*curves[e])
	}
	// Threshold line.
	thr := report.Series{Name: "threshold error 7.5e-5"}
	for h := 0; h <= maxHops; h++ {
		thr.X = append(thr.X, float64(h))
		thr.Y = append(thr.Y, fidelity.ThresholdError)
	}
	plot.Add(thr)
	return t, plot
}

// DistanceHops is the hop range plotted in Figures 10 and 11.
func DistanceHops() []int {
	hops := make([]int, 0, 60)
	for d := 1; d <= 60; d++ {
		hops = append(hops, d)
	}
	return hops
}

// Fig10 reproduces Figure 10 (metric: total EPR pairs used) and Figure 11
// (metric: EPR pairs teleported) from the same evaluation; which figure
// is selected by the teleported flag.
func Fig10(cfg epr.Config, teleported bool) (*report.Table, *report.Plot) {
	name, metric := "Figure 10: total EPR pairs used", "TotalPairs"
	if teleported {
		name, metric = "Figure 11: EPR pairs teleported", "TeleportedPairs"
	}
	pts := cfg.DistanceSeries(DistanceHops())
	t := report.NewTable(name+" vs distance and purification placement",
		"Scheme", "Hops", "ArrivalError", "EndpointRounds", metric)
	plot := report.NewPlot(name, "distance travelled in teleports", metric)
	plot.LogY = true

	curves := map[epr.Scheme]*report.Series{}
	for _, pt := range pts {
		val := pt.Cost.TotalPairs
		if teleported {
			val = pt.Cost.TeleportedPairs
		}
		t.AddRow(pt.Scheme.String(), pt.Hops, pt.Cost.ArrivalError, pt.Cost.EndpointRounds, val)
		c, ok := curves[pt.Scheme]
		if !ok {
			c = &report.Series{Name: "DEJMPS " + pt.Scheme.String()}
			curves[pt.Scheme] = c
		}
		// Clip the exponential schemes at 1e8 like the paper's axes.
		if val <= 1e8 {
			c.X = append(c.X, float64(pt.Hops))
			c.Y = append(c.Y, val)
		}
	}
	for _, s := range epr.Schemes {
		plot.Add(*curves[s])
	}
	return t, plot
}

// Fig12Rates is the uniform error-rate sweep of Figure 12: quarter-decade
// steps from 1e-9 to 1e-4.
func Fig12Rates() []float64 {
	var rates []float64
	for exp := -9.0; exp <= -4.0+1e-9; exp += 0.25 {
		rates = append(rates, math.Pow(10, exp))
	}
	return rates
}

// Fig12 reproduces Figure 12: EPR pairs teleported to support one data
// communication versus a uniform operation error rate, at the given path
// length.  The paper does not state the path length; we default to 10
// hops (see EXPERIMENTS.md).
func Fig12(base phys.Params, hops int) (*report.Table, *report.Plot) {
	pts := epr.Fig12Series(base, Fig12Rates(), hops)
	t := report.NewTable(fmt.Sprintf("Figure 12: EPR pairs teleported vs uniform error rate (%d hops)", hops),
		"Scheme", "ErrorRate", "Feasible", "EndpointRounds", "TeleportedPairs")
	plot := report.NewPlot("Figure 12: pairs teleported vs operation error rate",
		"error rate of all operations", "EPR pairs teleported")
	plot.LogX, plot.LogY = true, true

	curves := map[epr.Scheme]*report.Series{}
	for _, pt := range pts {
		t.AddRow(pt.Scheme.String(), pt.ErrorRate, pt.Cost.Feasible, pt.Cost.EndpointRounds, pt.Cost.TeleportedPairs)
		c, ok := curves[pt.Scheme]
		if !ok {
			c = &report.Series{Name: "DEJMPS " + pt.Scheme.String()}
			curves[pt.Scheme] = c
		}
		if pt.Cost.Feasible && pt.Cost.TeleportedPairs <= 1e12 {
			c.X = append(c.X, pt.ErrorRate)
			c.Y = append(c.Y, pt.Cost.TeleportedPairs)
		}
	}
	for _, s := range epr.Schemes {
		plot.Add(*curves[s])
	}
	return t, plot
}

// Claims reproduces the scattered numeric claims of the paper's text.
func Claims(p phys.Params) *report.Table {
	t := report.NewTable("Numeric claims from the paper's text",
		"Claim", "Paper", "Measured")
	t.AddRow("Corner-to-corner error, 1000x1000 grid (§1)", "> 1e-3",
		fidelity.CornerToCornerError(p, 1000))
	t.AddRow("Teleport/ballistic latency crossover (§4.6)", "~600 cells",
		p.CrossoverCells())
	t.AddRow("64-hop error amplification at 1e-6 (§4.6/Fig 9)", "~100x",
		(1-fidelity.TeleportChain(p, 1-1e-6, 1-1e-6, 64))/1e-6)
	code, err := ecc.Steane(2)
	if err == nil {
		t.AddRow("EPR pairs per logical communication (§5.3)", "392",
			code.RawPairsPerLogicalTeleport(3))
	}
	t.AddRow("Distribution breakdown error rate (Fig 12)", "near 1e-5",
		epr.BreakdownRate(p, 10, 1e-7, 1e-3))
	cfg := epr.DefaultConfig(p)
	t.AddRow("Pairs to set up one channel, 30 hops, end-only (§6)", "several dozen",
		cfg.Evaluate(epr.EndpointsOnly, 30).TeleportedPairs/30)
	return t
}
