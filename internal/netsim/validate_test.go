package netsim

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/phys"
)

// validConfig returns a minimal config that passes Validate, for the
// boundary table to perturb one field at a time.
func validConfig(t *testing.T) Config {
	t.Helper()
	g, err := mesh.NewGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Params:      phys.IonTrap2006(),
		Grid:        g,
		Layout:      HomeBase,
		Teleporters: 4, Generators: 4, Purifiers: 2,
		PurifyDepth: 3, CodeLevel: 2, HopCells: 600,
	}
}

// TestValidateBoundsMatchMessages audits every Validate clause: the
// boundary value each message names must be accepted on its legal
// side and rejected on its illegal side, and the rejection message
// must mention the offending field.  This pins message text to actual
// behaviour — a drifted bound or a misquoted interval breaks here.
func TestValidateBoundsMatchMessages(t *testing.T) {
	cases := []struct {
		name    string
		mention string // substring the rejection must contain
		legal   func(*Config)
		illegal func(*Config)
	}{
		{"teleporters >= 1", "resource counts",
			func(c *Config) { c.Teleporters = 1 },
			func(c *Config) { c.Teleporters = 0 }},
		{"generators >= 1", "resource counts",
			func(c *Config) { c.Generators = 1 },
			func(c *Config) { c.Generators = 0 }},
		{"purifiers >= 1", "resource counts",
			func(c *Config) { c.Purifiers = 1 },
			func(c *Config) { c.Purifiers = 0 }},
		{"purify depth lower bound", "purify depth",
			func(c *Config) { c.PurifyDepth = 1 },
			func(c *Config) { c.PurifyDepth = 0 }},
		{"purify depth upper bound", "purify depth",
			func(c *Config) { c.PurifyDepth = 16 },
			func(c *Config) { c.PurifyDepth = 17 }},
		{"code level >= 0", "code level",
			func(c *Config) { c.CodeLevel = 0 },
			func(c *Config) { c.CodeLevel = -1 }},
		{"hop cells >= 1", "hop cells",
			func(c *Config) { c.HopCells = 1 },
			func(c *Config) { c.HopCells = 0 }},
		{"turn cells >= 0", "turn cells",
			func(c *Config) { c.TurnCells = 0 },
			func(c *Config) { c.TurnCells = -1 }},
		// The message says [0,1): rate 0 is legal, rate 1 is not —
		// exactly what the half-open interval claims.
		{"failure rate lower bound", "failure rate",
			func(c *Config) { c.PurifyFailureRate = 0 },
			func(c *Config) { c.PurifyFailureRate = -0.001 }},
		{"failure rate upper bound", "failure rate",
			func(c *Config) { c.PurifyFailureRate = 0.999 },
			func(c *Config) { c.PurifyFailureRate = 1 }},
		// Faults.Validate says DeadLinks lives in the closed [0,1].
		{"dead links upper bound", "DeadLinks",
			func(c *Config) { c.Faults = fault.Spec{DeadLinks: 1} },
			func(c *Config) { c.Faults = fault.Spec{DeadLinks: 1.001} }},
		// And Drop in the half-open [0,1): a permanent 100% drop is a
		// dead link, not a drop rate.
		{"drop upper bound", "Drop",
			func(c *Config) { c.Faults = fault.Spec{Drop: 0.999} },
			func(c *Config) { c.Faults = fault.Spec{Drop: 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legal := validConfig(t)
			tc.legal(&legal)
			if err := legal.Validate(); err != nil {
				t.Fatalf("boundary-legal config rejected: %v", err)
			}
			illegal := validConfig(t)
			tc.illegal(&illegal)
			err := illegal.Validate()
			if err == nil {
				t.Fatal("boundary-illegal config accepted")
			}
			if !strings.Contains(err.Error(), tc.mention) {
				t.Fatalf("rejection %q does not mention %q", err, tc.mention)
			}
		})
	}
}
