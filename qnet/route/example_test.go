package route_test

import (
	"fmt"

	"repro/qnet"
	"repro/qnet/route"
)

// Example routes one src/dst pair under every shipped policy: all
// paths are minimal (equal hop counts), but they turn in different
// places — the trade each policy makes against the router's ballistic
// turn penalty.
func Example() {
	grid, err := qnet.NewGrid(8, 8)
	if err != nil {
		panic(err)
	}
	src := route.Coord{X: 0, Y: 0}
	dst := route.Coord{X: 3, Y: 2}
	for _, p := range route.Policies() {
		dirs, err := p.Route(grid, src, dst, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s %d hops, %d turns\n", p.Name(), len(dirs), route.Turns(dirs))
	}
	// Output:
	// xy               5 hops, 1 turns
	// yx               5 hops, 1 turns
	// zigzag           5 hops, 4 turns
	// least-congested  5 hops, 1 turns
}
