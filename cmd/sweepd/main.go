// Command sweepd is the distributed sweep worker daemon: it serves
// the qnet/distrib job API and executes dispatched shards through the
// in-process sweep engine.
//
// A worker keeps a local result store (in-memory by default, disk-
// backed with -cache-dir) consulted for jobs that do not name a shared
// fleet store; jobs dispatched by a coordinator running with a store
// endpoint carry a StoreURL and use the fleet's shared store instead,
// so every worker's results warm every other worker.
//
// Endpoints:
//
//	POST /v1/jobs             submit a shard (JSON distrib.Job)
//	GET  /v1/jobs/{id}/stream newline-delimited JSON results
//	GET  /v1/healthz          liveness
//	GET  /v1/status           live worker telemetry (JSON distrib.Status)
//	GET/PUT /v1/store/...     the local store, when -serve-store is set
//
// Usage:
//
//	sweepd -listen :9000
//	sweepd -listen :9000 -cache-dir /var/qnet/store -serve-store
//	sweepd -listen :9000 -parallel 4
//	sweepd -listen :9000 -run-parallel 4
//	sweepd -listen :9000 -telemetry 100us   # per-run tracers feed /v1/status
//	sweepd -listen :9000 -drain-timeout 30s # graceful-drain deadline on SIGTERM
//
// With -serve-store the worker also exposes its own store over the
// store API, so a small fleet can elect any worker as the shared
// store instead of running one beside the coordinator.
//
// On SIGTERM (or SIGINT) the daemon drains instead of dying: it
// refuses new jobs with 503 "draining", answers healthz the same way
// so coordinators stop dispatching to it, finishes the shards already
// in flight (up to -drain-timeout), then exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/qnet/distrib"
	"repro/qnet/simulate"
)

func main() {
	var (
		listen      = flag.String("listen", ":9000", "address to serve the job API on")
		cacheDir    = flag.String("cache-dir", "", "directory for the worker's on-disk result store (empty: in-memory)")
		parallel    = flag.Int("parallel", 0, "points simulated concurrently per job (0 = GOMAXPROCS)")
		runParallel = flag.Int("run-parallel", 0, "row-band regions of the parallel event engine per simulation (0 or 1 = serial; results are byte-identical)")
		serveStore  = flag.Bool("serve-store", false, "also expose the worker's local store over the /v1/store API")
		telemetry   = flag.Duration("telemetry", 0, "attach a per-run telemetry tracer sampled at this simulated-time interval, feeding /v1/status with live event-rate and occupancy (0 = progress counters only)")
		drainLimit  = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight shards before exiting anyway")
	)
	flag.Parse()

	var store simulate.Store
	if *cacheDir != "" {
		disk, err := simulate.NewDiskCache(*cacheDir, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
		store = disk
	} else {
		store = simulate.NewCache(0)
	}

	wopts := []distrib.WorkerOption{
		distrib.WithWorkerStore(store),
		distrib.WithWorkerParallelism(*parallel),
		distrib.WithWorkerRunParallelism(*runParallel),
	}
	if *telemetry > 0 {
		wopts = append(wopts, distrib.WithWorkerTelemetry(*telemetry))
	}
	worker := distrib.NewWorker(wopts...)
	server := distrib.NewServer(worker)
	defer server.Close()

	mux := http.NewServeMux()
	mux.Handle("/v1/jobs", server.Handler())
	mux.Handle("/v1/jobs/", server.Handler())
	mux.Handle("/v1/healthz", server.Handler())
	mux.Handle("/v1/status", server.Handler())
	if *serveStore {
		mux.Handle("/v1/store/", distrib.NewStoreServer(store).Handler())
	}

	httpServer := &http.Server{Addr: *listen, Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.ListenAndServe() }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	log.Printf("sweepd: serving job API on %s (store: %s, serve-store: %v)",
		*listen, storeDesc(*cacheDir), *serveStore)
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
	case sig := <-sigs:
		log.Printf("sweepd: %v: draining (refusing new jobs, finishing in-flight shards, limit %s)",
			sig, *drainLimit)
		ctx, cancel := context.WithTimeout(context.Background(), *drainLimit)
		if err := server.Drain(ctx); err != nil {
			log.Printf("sweepd: drain deadline passed with shards still in flight: %v", err)
		} else {
			log.Printf("sweepd: drained, exiting")
		}
		httpServer.Shutdown(ctx)
		cancel()
	}
}

// storeDesc names the local store kind for the startup log line.
func storeDesc(cacheDir string) string {
	if cacheDir == "" {
		return "in-memory"
	}
	return "disk:" + cacheDir
}
