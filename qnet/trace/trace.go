// Package trace exposes the simulator's time-series telemetry layer: a
// ring-buffered, sampling tracer that records per-router queue
// occupancy, per-link utilization and drop/resend events over simulated
// time.
//
// A Tracer attaches to a machine with simulate.WithTrace (or
// Machine.WithTrace) and is sampled through the event engine's probe
// hook at exact multiples of its interval:
//
//	tr := trace.New(trace.Config{Interval: 50 * time.Microsecond})
//	m, err := simulate.New(grid, simulate.MobileQubit, simulate.WithTrace(tr))
//	res, err := m.Run(ctx, qnet.QFT(grid.Tiles()))
//	err = tr.Export().Encode(file) // versioned JSON time series
//
// The tracer is an observer, never part of the model: a traced run
// executes exactly the same events and produces a byte-identical
// Result, which is why the tracer — like the parallel-engine choice —
// is excluded from Machine.CacheKey.  A traced Run always simulates
// (a cached Result has nothing to observe) but still stores its result
// back into an attached cache.
//
// The exported series follow the route.Loads contract: occupancy and
// utilization are counter-over-capacity ratios that exceed 1.0 under
// backlog.  Clamp01 bounds them for color scaling; the congestion
// heatmap (internal/figures, `figures -fig congestion`) renders them
// that way.
package trace

import (
	"io"

	"repro/internal/trace"
)

// Config parameterizes a Tracer: the sampling interval in simulated
// time and the sample/event ring capacities (zero fields select the
// package defaults).
type Config = trace.Config

// Tracer records one run's time series.  Bind it to a run through
// simulate.WithTrace; only Live is safe to call from other goroutines
// while the traced run executes.
type Tracer = trace.Tracer

// Export is the compact, versioned serialization of one recorded run:
// columnar per-sample series plus the drop/resend event log.  Equal
// runs export byte-identical traces.
type Export = trace.Export

// Event is one traced drop or resend, stamped with simulated time and
// the canonical link index it occurred on.
type Event = trace.Event

// EventKind classifies a traced event (Drop or Resend).
type EventKind = trace.EventKind

// The traced event kinds.
const (
	// Drop is a batch lost in flight to the fault model.
	Drop = trace.Drop
	// Resend is a replacement batch injected after a drop or a
	// purification failure.
	Resend = trace.Resend
)

// Live is the tracer's cheap concurrent snapshot, refreshed once per
// sample; the distributed worker's heartbeat telemetry reads it.
type Live = trace.Live

// Version is the trace export format identifier; Decode rejects any
// other value.
const Version = trace.Version

// DefaultInterval is the sampling interval selected by a zero
// Config.Interval.
const DefaultInterval = trace.DefaultInterval

// DefaultCapacity is the sample-ring size selected by a zero
// Config.Capacity.
const DefaultCapacity = trace.DefaultCapacity

// New builds a tracer with the given configuration (zero fields select
// the defaults).
func New(cfg Config) *Tracer { return trace.New(cfg) }

// Decode reads an export written by Export.Encode, rejecting unknown
// format versions.
func Decode(r io.Reader) (*Export, error) { return trace.Decode(r) }

// Clamp01 clamps a load or utilization value into [0, 1] for color and
// glyph scaling: the route.Loads contract reports queue pressure as
// occupancy over capacity, which exceeds 1.0 under backlog.
func Clamp01(v float64) float64 { return trace.Clamp01(v) }
