package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunContextBudgetExactlyAtCheckInterval pins the off-by-one-prone
// interaction of the event budget with the periodic context check: a
// budget of exactly ctxCheckInterval on a live context must execute
// exactly that many events and report no error.
func TestRunContextBudgetExactlyAtCheckInterval(t *testing.T) {
	e := New()
	var scheduled func()
	scheduled = func() { e.Schedule(time.Nanosecond, scheduled) }
	e.Schedule(0, scheduled)
	n, err := e.RunContext(context.Background(), ctxCheckInterval)
	if err != nil {
		t.Fatal(err)
	}
	if n != ctxCheckInterval {
		t.Errorf("executed %d events, want exactly %d", n, ctxCheckInterval)
	}
}

// TestRunContextCancelLandsOnCheckBoundary cancels the context from
// inside the event immediately preceding the periodic check, so the
// very next loop iteration must observe it: the run stops having
// executed ctxCheckInterval-1 events, with the remaining events intact.
func TestRunContextCancelLandsOnCheckBoundary(t *testing.T) {
	e := New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	total := ctxCheckInterval + 16
	ran := 0
	for i := 0; i < total; i++ {
		i := i
		e.Schedule(time.Duration(i)*time.Microsecond, func() {
			ran++
			// The check fires before executing event index
			// ctxCheckInterval-1, so cancelling in the previous event is
			// the tightest cancellation the loop can observe.
			if i == ctxCheckInterval-2 {
				cancel()
			}
		})
	}
	n, err := e.RunContext(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != ctxCheckInterval-1 {
		t.Errorf("executed %d events, want %d (cancelled exactly at the check)", n, ctxCheckInterval-1)
	}
	if int(n) != ran {
		t.Errorf("returned count %d != callback count %d", n, ran)
	}
	if e.Pending() != total-int(n) {
		t.Errorf("pending = %d, want %d (engine left intact)", e.Pending(), total-int(n))
	}
}

// TestRunContextSkipsTombstonedHead cancels the earliest pending event
// and then runs under a context: the tombstone must be discarded
// without counting toward the executed total or advancing the clock to
// its time.
func TestRunContextSkipsTombstonedHead(t *testing.T) {
	e := New()
	id := e.Schedule(time.Microsecond, func() { t.Error("cancelled head event ran") })
	var at time.Duration
	e.Schedule(5*time.Microsecond, func() { at = e.Now() })
	if !e.Cancel(id) {
		t.Fatal("cancel failed")
	}
	n, err := e.RunContext(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("executed %d events, want 1 (tombstone must not count)", n)
	}
	if at != 5*time.Microsecond {
		t.Errorf("surviving event ran at %v, want 5µs", at)
	}
}

// TestRunUntilWithTombstonedHead covers RunUntil against a cancelled
// event at the front of the queue, in both positions relative to the
// horizon: the tombstone must neither run nor stop the live event
// behind it, and a tombstone-only queue must still advance the clock to
// exactly t.
func TestRunUntilWithTombstonedHead(t *testing.T) {
	t.Run("live event within horizon", func(t *testing.T) {
		e := New()
		id := e.Schedule(time.Microsecond, func() { t.Error("cancelled event ran") })
		ran := false
		e.Schedule(2*time.Microsecond, func() { ran = true })
		e.Cancel(id)
		e.RunUntil(3 * time.Microsecond)
		if !ran {
			t.Error("live event behind the tombstone never ran")
		}
		if e.Now() != 3*time.Microsecond {
			t.Errorf("clock = %v, want 3µs", e.Now())
		}
	})
	t.Run("live event beyond horizon", func(t *testing.T) {
		e := New()
		id := e.Schedule(time.Microsecond, func() { t.Error("cancelled event ran") })
		e.Schedule(5*time.Microsecond, func() { t.Error("event beyond horizon ran") })
		e.Cancel(id)
		e.RunUntil(3 * time.Microsecond)
		if e.Now() != 3*time.Microsecond {
			t.Errorf("clock = %v, want 3µs (not the tombstone's 1µs)", e.Now())
		}
		if e.Pending() != 1 {
			t.Errorf("pending = %d, want 1", e.Pending())
		}
	})
	t.Run("only tombstones pending", func(t *testing.T) {
		e := New()
		id := e.Schedule(time.Microsecond, func() {})
		e.Cancel(id)
		e.RunUntil(2 * time.Microsecond)
		if e.Now() != 2*time.Microsecond {
			t.Errorf("clock = %v, want 2µs", e.Now())
		}
		if e.Pending() != 0 {
			t.Errorf("pending = %d, want 0", e.Pending())
		}
	})
}

// TestScheduleCallOrdersWithSchedule verifies the allocation-free
// ScheduleCall form shares the engine's FIFO ordering with Schedule:
// interleaved calls at one instant run in scheduling order.
func TestScheduleCallOrdersWithSchedule(t *testing.T) {
	e := New()
	var order []int
	appendLabel := func(a any) { order = append(order, a.(int)) }
	e.Schedule(time.Microsecond, func() { order = append(order, 0) })
	e.ScheduleCall(time.Microsecond, appendLabel, 1)
	e.Schedule(time.Microsecond, func() { order = append(order, 2) })
	e.ScheduleCall(time.Microsecond, appendLabel, 3)
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v, want [0 1 2 3]", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("ran %d events, want 4", len(order))
	}
}

// TestScheduleCallPanicsOnNilFunc mirrors Schedule's nil-function
// contract for the call form.
func TestScheduleCallPanicsOnNilFunc(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("nil event function should panic")
		}
	}()
	e.ScheduleCall(0, nil, nil)
}

// TestCancelStaleAndForeignIDs covers the O(1) validity check: zero
// IDs, never-issued IDs and IDs from executed events must all report
// false without disturbing the queue.
func TestCancelStaleAndForeignIDs(t *testing.T) {
	e := New()
	if e.Cancel(0) {
		t.Error("Cancel(0) should fail")
	}
	if e.Cancel(EventID(1<<40 | 7)) {
		t.Error("Cancel of a never-issued ID should fail")
	}
	id := e.Schedule(time.Microsecond, func() {})
	e.Run(0)
	if e.Cancel(id) {
		t.Error("Cancel of an executed event should fail")
	}
	// A recycled slot must not honor the old handle: the next event
	// reuses the executed event's arena slot under a new generation.
	id2 := e.Schedule(time.Microsecond, func() {})
	if e.Cancel(id) {
		t.Error("stale handle cancelled a recycled slot's new occupant")
	}
	if !e.Cancel(id2) {
		t.Error("fresh handle should cancel its own event")
	}
}

// TestReserveMakesSchedulingAllocationFree pins the arena design's
// core promise: after Reserve covers the backlog, a schedule/step
// cycle performs zero heap allocations.
func TestReserveMakesSchedulingAllocationFree(t *testing.T) {
	e := New()
	e.Reserve(512)
	fn := func() {}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < 256; i++ {
			e.Schedule(time.Duration(i+1)*time.Microsecond, fn)
		}
		for e.Step() {
		}
	})
	if allocs != 0 {
		t.Errorf("schedule/step cycle allocated %.1f objects per run, want 0", allocs)
	}
}

// TestReserveNeverShrinks documents that a smaller Reserve is a no-op.
func TestReserveNeverShrinks(t *testing.T) {
	e := New()
	e.Reserve(256)
	heapCap, arenaCap := cap(e.heap), cap(e.arena)
	e.Reserve(16)
	if cap(e.heap) != heapCap || cap(e.arena) != arenaCap {
		t.Errorf("Reserve(16) changed capacities %d/%d to %d/%d",
			heapCap, arenaCap, cap(e.heap), cap(e.arena))
	}
}
