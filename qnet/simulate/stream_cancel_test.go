package simulate

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestStreamCancelMidSweep cancels a streaming sweep after its first
// delivered point and asserts the channel closes promptly and the
// worker goroutines exit (no leak).  Run under -race in CI.
func TestStreamCancelMidSweep(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	space := test2x2x2Space(t) // 8 points, enough to be mid-sweep after one
	ch, total, err := Stream(ctx, space, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if total != 8 {
		t.Fatalf("total = %d, want 8", total)
	}

	select {
	case _, ok := <-ch:
		if !ok {
			t.Fatal("channel closed before any point")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no point delivered")
	}
	cancel()

	// The channel must close promptly; a few in-flight points may
	// still arrive (simulations that finished before their worker saw
	// the cancellation), but never all of them.
	deadline := time.After(30 * time.Second)
	got := 1
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				if got == total {
					t.Fatalf("cancellation delivered all %d points", total)
				}
				goto closed
			}
			got++
		case <-deadline:
			t.Fatal("channel did not close after cancellation")
		}
	}
closed:

	// Every sweep goroutine (feeder, workers, closer) must exit; poll
	// because the closer legitimately trails the channel close.
	for wait := time.Duration(0); ; wait += 10 * time.Millisecond {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if wait > 10*time.Second {
			t.Fatalf("goroutine leak after cancelled Stream: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
