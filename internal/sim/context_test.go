package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunContextCompletes(t *testing.T) {
	e := New()
	var ran int
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, func() { ran++ })
	}
	n, err := e.RunContext(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || ran != 10 {
		t.Errorf("ran %d events (counter %d), want 10", n, ran)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	e := New()
	e.Schedule(time.Microsecond, func() { t.Error("event ran despite cancelled context") })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := e.RunContext(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Errorf("executed %d events under a cancelled context", n)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (engine left intact)", e.Pending())
	}
}

// TestRunContextCancelMidRun schedules a self-perpetuating event chain
// and cancels from within it; the loop must stop at the next check
// instead of running forever.
func TestRunContextCancelMidRun(t *testing.T) {
	e := New()
	ctx, cancel := context.WithCancel(context.Background())
	var scheduled func()
	count := 0
	scheduled = func() {
		count++
		if count == 10000 {
			cancel()
		}
		e.Schedule(time.Nanosecond, scheduled)
	}
	e.Schedule(0, scheduled)
	_, err := e.RunContext(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if count < 10000 || count > 10000+ctxCheckInterval {
		t.Errorf("stopped after %d events; want within one check interval of 10000", count)
	}
}

func TestRunContextBudget(t *testing.T) {
	e := New()
	var scheduled func()
	scheduled = func() { e.Schedule(time.Nanosecond, scheduled) }
	e.Schedule(0, scheduled)
	n, err := e.RunContext(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("budgeted run executed %d events, want 100", n)
	}
}
