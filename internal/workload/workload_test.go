package workload

import (
	"testing"
	"testing/quick"
)

func TestQFTOpCount(t *testing.T) {
	for _, n := range []int{2, 3, 8, 16, 256} {
		p := QFT(n)
		if err := p.Validate(); err != nil {
			t.Fatalf("QFT(%d): %v", n, err)
		}
		if want := n * (n - 1) / 2; len(p.Ops) != want {
			t.Errorf("QFT(%d) has %d ops, want %d", n, len(p.Ops), want)
		}
	}
}

func TestQFTPaperOrder(t *testing.T) {
	// Paper §5.2 (1-based): 1-2, 1-3, (1-4, 2-3), (1-5, 2-4),
	// (1-6, 2-5, 3-4).  0-based: 0-1, 0-2, 0-3, 1-2, 0-4, 1-3, 0-5, 1-4, 2-3.
	p := QFT(6)
	want := []Op{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {0, 4}, {1, 3}, {0, 5}, {1, 4}, {2, 3}}
	for i, w := range want {
		if p.Ops[i] != w {
			t.Fatalf("QFT(6) ops[%d] = %v, want %v (full: %v)", i, p.Ops[i], w, p.Ops[:len(want)])
		}
	}
}

func TestQFTAllToAll(t *testing.T) {
	n := 10
	p := QFT(n)
	seen := map[Op]bool{}
	for _, op := range p.Ops {
		if op.A >= op.B {
			t.Errorf("op %v not in canonical (low,high) order", op)
		}
		if seen[op] {
			t.Errorf("duplicate op %v", op)
		}
		seen[op] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !seen[(Op{i, j})] {
				t.Errorf("missing pair %d-%d", i, j)
			}
		}
	}
}

func TestQFTDegenerate(t *testing.T) {
	if ops := QFT(1).Ops; len(ops) != 0 {
		t.Errorf("QFT(1) should have no ops, got %v", ops)
	}
	if ops := QFT(0).Ops; len(ops) != 0 {
		t.Errorf("QFT(0) should have no ops, got %v", ops)
	}
}

func TestModMultBipartite(t *testing.T) {
	n := 8
	p := ModMult(n)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if want := n * n; len(p.Ops) != want {
		t.Fatalf("MM(%d) has %d ops, want %d", n, len(p.Ops), want)
	}
	seen := map[Op]bool{}
	for _, op := range p.Ops {
		if op.A >= n || op.B < n {
			t.Errorf("op %v crosses sets the wrong way", op)
		}
		if seen[op] {
			t.Errorf("duplicate op %v", op)
		}
		seen[op] = true
	}
}

func TestModMultRoundsAreParallel(t *testing.T) {
	n := 4
	p := ModMult(n)
	// Each round of n ops touches every qubit exactly once.
	for r := 0; r < n; r++ {
		used := map[int]bool{}
		for _, op := range p.Ops[r*n : (r+1)*n] {
			if used[op.A] || used[op.B] {
				t.Errorf("round %d reuses a qubit: %v", r, p.Ops[r*n:(r+1)*n])
			}
			used[op.A], used[op.B] = true, true
		}
	}
}

func TestModExpComposition(t *testing.T) {
	n, steps := 6, 3
	p := ModExp(n, steps)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	perStep := n*(n-1)/2 + n*n
	if want := steps * perStep; len(p.Ops) != want {
		t.Errorf("ME(%d,%d) has %d ops, want %d", n, steps, len(p.Ops), want)
	}
	if p.Qubits != 2*n {
		t.Errorf("ME qubits = %d, want %d", p.Qubits, 2*n)
	}
}

func TestModExpDegenerate(t *testing.T) {
	if len(ModExp(0, 1).Ops) != 0 || len(ModExp(4, 0).Ops) != 0 {
		t.Error("degenerate ME should be empty")
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	p := Program{Name: "bad", Qubits: 2, Ops: []Op{{0, 0}}}
	if err := p.Validate(); err == nil {
		t.Error("self-op should fail validation")
	}
	p = Program{Name: "bad", Qubits: 2, Ops: []Op{{0, 5}}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range op should fail validation")
	}
	p = Program{Name: "bad", Qubits: 0}
	if err := p.Validate(); err == nil {
		t.Error("zero-qubit program should fail validation")
	}
}

// Property: QFT ops are sorted by label sum (the paper's wavefront
// order), and within a sum by the lower label.
func TestQFTOrderProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		p := QFT(n)
		for i := 1; i < len(p.Ops); i++ {
			prev, cur := p.Ops[i-1], p.Ops[i]
			ps, cs := prev.A+prev.B, cur.A+cur.B
			if cs < ps {
				return false
			}
			if cs == ps && cur.A < prev.A {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
