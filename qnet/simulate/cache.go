// Result caching for the sweep engine.
//
// Every run of the simulator is a pure function of its fully-resolved
// configuration (device parameters, grid, layout, resources, purifier
// depth, code level, hop geometry, failure rate, seed) and its program.
// That makes results content-addressable: a deterministic hash of those
// inputs is a complete identity for the run's Result, so repeated
// figure generation — where only one dimension of a parameter space
// changed — can reuse every unchanged point instead of re-simulating
// it.  See docs/ARCHITECTURE.md ("Caching") for the full key semantics.

package simulate

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/netsim"

	"repro/qnet"
	"repro/qnet/route"
)

// Key is the content address of one simulation run: a SHA-256 digest of
// the fully-resolved run point.  Two runs with equal keys are guaranteed
// to produce identical Results, so a Key is safe to use as a cache
// identity across processes, hosts and repository versions that share
// the same keyVersion.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// keyVersion is bumped whenever the canonical serialization below — or
// the simulator's observable behaviour — changes, invalidating every
// previously stored result.  v2: the routing policy joined the key (and
// Result gained the Turns counter).  v3: the fault spec joined the key
// (dead-link fraction, drop rate, degraded regions) and Result gained
// the DroppedBatches/DeadLinks counters; distinct fault patterns must
// never collide on one key.
const keyVersion = "qnet-result-v3"

// hashString writes a length-prefixed string into the hash, so field
// boundaries cannot alias ("ab"+"c" vs "a"+"bc").
func hashString(w io.Writer, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	w.Write(n[:])
	io.WriteString(w, s)
}

// hashInt writes a signed integer into the hash.
func hashInt(w io.Writer, v int64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(v))
	w.Write(n[:])
}

// hashFloat writes a float64 into the hash bit-exactly.
func hashFloat(w io.Writer, v float64) {
	hashString(w, strconv.FormatFloat(v, 'x', -1, 64))
}

// keyFor computes the content address of running prog on a machine with
// the given fully-resolved configuration.  The hash covers, in a fixed
// field order (never a Go map, so it is independent of map iteration
// order): the key version, every device constant of the paper's
// Tables 1-2, the grid dimensions, the layout, the routing policy (by
// canonical name), the per-node resource counts, purifier depth, code
// level, hop and turn geometry, the failure rate, the fault spec, the
// effective seed, and a fingerprint of the program (name, qubit count
// and every op).
//
// When the failure rate is zero and the fault spec is empty the
// simulation never consults its RNG, so the seed cannot influence the
// result; keyFor canonicalizes the seed to 0 in that case, letting
// multi-seed sweeps of a deterministic configuration collapse to a
// single simulation plus cache hits.
func keyFor(cfg netsim.Config, prog qnet.Program) Key {
	h := sha256.New()
	hashString(h, keyVersion)

	// Device constants, Table 1 then Table 2.
	hashInt(h, int64(cfg.Params.Times.OneQubitGate))
	hashInt(h, int64(cfg.Params.Times.TwoQubitGate))
	hashInt(h, int64(cfg.Params.Times.MoveCell))
	hashInt(h, int64(cfg.Params.Times.Measure))
	hashInt(h, int64(cfg.Params.Times.ClassicalBitPerCell))
	hashFloat(h, cfg.Params.Errors.OneQubitGate)
	hashFloat(h, cfg.Params.Errors.TwoQubitGate)
	hashFloat(h, cfg.Params.Errors.MoveCell)
	hashFloat(h, cfg.Params.Errors.Measure)

	// Machine shape.  The routing policy is hashed by its canonical
	// name (nil canonicalizes to "xy", which routes identically), so
	// two machines differing only in policy never share a key.
	hashInt(h, int64(cfg.Grid.Width))
	hashInt(h, int64(cfg.Grid.Height))
	hashInt(h, int64(cfg.Layout))
	hashString(h, route.NameOf(cfg.Route))
	hashInt(h, int64(cfg.Teleporters))
	hashInt(h, int64(cfg.Generators))
	hashInt(h, int64(cfg.Purifiers))
	hashInt(h, int64(cfg.PurifyDepth))
	hashInt(h, int64(cfg.CodeLevel))
	hashInt(h, int64(cfg.HopCells))
	hashInt(h, int64(cfg.TurnCells))
	hashFloat(h, cfg.PurifyFailureRate)

	// Fault spec, field by field in declaration order (regions length-
	// prefixed): two machines differing in any fault knob never share a
	// key.
	hashFloat(h, cfg.Faults.DeadLinks)
	hashFloat(h, cfg.Faults.Drop)
	hashInt(h, int64(len(cfg.Faults.Regions)))
	for _, r := range cfg.Faults.Regions {
		hashInt(h, int64(r.X))
		hashInt(h, int64(r.Y))
		hashInt(h, int64(r.W))
		hashInt(h, int64(r.H))
		hashFloat(h, r.Drop)
	}

	// The seed matters only when the RNG can be consulted: failure
	// injection and the fault model are its only consumers, so with
	// both off the seed cannot influence the result.
	seed := cfg.Seed
	if cfg.PurifyFailureRate == 0 && cfg.Faults.Empty() {
		seed = 0
	}
	hashInt(h, seed)

	// Config.Parallel is deliberately NOT hashed: parallelism is an
	// engine choice, not a model change — a parallel run is byte-
	// identical to the serial run of the same config, so a cached serial
	// result must answer a parallel request and vice versa.
	//
	// Config.Trace is deliberately NOT hashed either: a tracer observes
	// the run through the engine's probe hook without scheduling events,
	// so a traced run's Result is byte-identical to an untraced one —
	// the tracer is an observer, not part of the model.  (A traced Run
	// bypasses cache lookup so the tracer sees a real simulation, but
	// stores its result under the same key an untraced run would.)

	// Program fingerprint.
	hashString(h, prog.Name)
	hashInt(h, int64(prog.Qubits))
	hashInt(h, int64(len(prog.Ops)))
	for _, op := range prog.Ops {
		hashInt(h, int64(op.A))
		hashInt(h, int64(op.B))
	}

	var k Key
	h.Sum(k[:0])
	return k
}

// CacheKey returns the content address of running prog on this machine:
// the deterministic hash under which a Cache stores the run's Result.
// Machines with equal configurations yield equal keys for equal
// programs, across processes and map orderings.
func (m *Machine) CacheKey(prog qnet.Program) Key { return keyFor(m.cfg, prog) }

// DefaultCacheEntries is the in-memory LRU capacity used when a cache
// is created without an explicit size (WithCacheDir, or NewCache with a
// non-positive capacity).
const DefaultCacheEntries = 4096

// CacheStats are a cache's monotonically increasing hit/miss counters
// plus its current occupancy.  Hits counts every Get served (from
// memory or disk); DiskHits is the subset that had to be read from the
// on-disk store; WriteErrors counts best-effort disk writes that
// failed; DiskEvictions counts on-disk entries pruned by the max-bytes
// or max-age budget; CorruptEntries counts on-disk entries that were
// present but unparseable (each one silently degraded into a miss —
// nonzero means the store is rotting, which matters once many hosts
// share it).
type CacheStats struct {
	Hits           uint64
	DiskHits       uint64
	Misses         uint64
	WriteErrors    uint64
	DiskEvictions  uint64
	CorruptEntries uint64
	Entries        int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the counters compactly ("17 hits (3 disk), 5 misses,
// 77.3% hit rate"), flagging corrupt entries when any were seen.
func (s CacheStats) String() string {
	out := fmt.Sprintf("%d hits (%d disk), %d misses, %.1f%% hit rate",
		s.Hits, s.DiskHits, s.Misses, 100*s.HitRate())
	if s.CorruptEntries > 0 {
		out += fmt.Sprintf(", %d corrupt", s.CorruptEntries)
	}
	return out
}

// Cache is a content-addressed store of simulation Results: an
// in-memory LRU optionally backed by an on-disk JSON store that
// persists results across processes.  A Cache is safe for concurrent
// use; Sweep and Stream consult it from every worker goroutine when
// installed with WithCache or WithCacheDir.
type Cache struct {
	mu      sync.Mutex
	cap     int
	dir     string
	order   *list.List // front = most recently used
	entries map[Key]*list.Element
	stats   CacheStats

	// On-disk budget (NewDiskCache options).  diskBytes is a running
	// estimate of the store's size, corrected by every prune's rescan;
	// diskMu serializes prune passes so concurrent Puts don't stack
	// directory scans.
	maxBytes  int64
	maxAge    time.Duration
	diskBytes int64
	diskMu    sync.Mutex
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key Key
	res Result
}

// NewCache builds an in-memory result cache holding up to capacity
// entries (DefaultCacheEntries when capacity is not positive).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[Key]*list.Element),
	}
}

// DiskOption tunes the on-disk store built by NewDiskCache.
type DiskOption func(*Cache)

// WithMaxBytes caps the on-disk store's total size.  When a write
// pushes the store over the cap, the least recently used entries (by
// file modification time; disk reads refresh it) are pruned until the
// store fits.  Non-positive values mean unlimited (the default).
func WithMaxBytes(n int64) DiskOption {
	return func(c *Cache) { c.maxBytes = n }
}

// WithMaxAge evicts on-disk entries whose modification time is older
// than d, at cache construction and on every subsequent prune pass.
// Non-positive values mean unlimited (the default).
func WithMaxAge(d time.Duration) DiskOption {
	return func(c *Cache) { c.maxAge = d }
}

// NewDiskCache builds a result cache backed by dir: every Put is also
// written to dir/<key>.json, and a Get that misses in memory falls back
// to the directory, so results persist across processes.  The directory
// is created if missing.  Unreadable or corrupt files are treated as
// misses, never errors.  WithMaxBytes and WithMaxAge bound a long-lived
// store: stale or over-budget entries are pruned LRU-by-mtime, so the
// directory never outgrows its budget.
func NewDiskCache(dir string, capacity int, opts ...DiskOption) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simulate: cache dir: %w", err)
	}
	c := NewCache(capacity)
	c.dir = dir
	for _, opt := range opts {
		opt(c)
	}
	if c.maxBytes > 0 || c.maxAge > 0 {
		// Startup pass: apply the age bound to entries left by earlier
		// processes and seed the size estimate the write path maintains.
		c.pruneDisk()
	}
	return c, nil
}

// pruneDisk enforces the on-disk budget: it rescans the store, deletes
// entries older than maxAge, then deletes least-recently-used entries
// (by mtime) until the total size fits maxBytes.  It returns the number
// of entries removed.
func (c *Cache) pruneDisk() int {
	c.diskMu.Lock()
	defer c.diskMu.Unlock()
	names, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return 0
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	entries := make([]entry, 0, len(names))
	var total int64
	now := time.Now()
	removed := 0
	for _, name := range names {
		fi, err := os.Stat(name)
		if err != nil {
			continue
		}
		if c.maxAge > 0 && now.Sub(fi.ModTime()) > c.maxAge {
			if os.Remove(name) == nil {
				removed++
			}
			continue
		}
		entries = append(entries, entry{path: name, size: fi.Size(), mtime: fi.ModTime()})
		total += fi.Size()
	}
	if c.maxBytes > 0 && total > c.maxBytes {
		sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
		for _, e := range entries {
			if total <= c.maxBytes {
				break
			}
			if os.Remove(e.path) == nil {
				total -= e.size
				removed++
			}
		}
	}
	c.mu.Lock()
	c.diskBytes = total
	c.stats.DiskEvictions += uint64(removed)
	c.mu.Unlock()
	return removed
}

// Dir returns the on-disk store's directory, or "" for a purely
// in-memory cache.
func (c *Cache) Dir() string { return c.dir }

// path returns the on-disk file for a key.
func (c *Cache) path(k Key) string { return filepath.Join(c.dir, k.String()+".json") }

// Get returns the cached Result for the key, consulting memory first
// and then the on-disk store (promoting disk hits into memory).
func (c *Cache) Get(k Key) (Result, bool) {
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()
	// Disk fallback outside the lock, so one worker's file read never
	// stalls the others' memory lookups.
	if c.dir != "" {
		if res, ok := c.readDisk(k); ok {
			c.mu.Lock()
			c.stats.Hits++
			c.stats.DiskHits++
			if _, ok := c.entries[k]; !ok {
				c.insert(k, res)
			}
			c.mu.Unlock()
			return res, true
		}
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return Result{}, false
}

// Put stores the Result for the key in memory and, for a disk-backed
// cache, on disk.  Disk write failures are recorded in
// CacheStats.WriteErrors but never fail the simulation.
func (c *Cache) Put(k Key, res Result) {
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
	} else {
		c.insert(k, res)
	}
	c.mu.Unlock()
	// The write happens outside the lock: the temp-file rename is
	// atomic, so concurrent writers of one key each leave a complete
	// file and the last rename wins.
	if c.dir != "" {
		n, err := c.writeDisk(k, res)
		if err != nil {
			c.mu.Lock()
			c.stats.WriteErrors++
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		c.diskBytes += n
		over := c.maxBytes > 0 && c.diskBytes > c.maxBytes
		c.mu.Unlock()
		if over {
			c.pruneDisk()
		}
	}
}

// insert adds a new entry, evicting the least recently used one when
// over capacity.  Callers hold c.mu.
func (c *Cache) insert(k Key, res Result) {
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// readDisk loads one key from the on-disk store.  A hit refreshes the
// file's modification time (best effort), so the max-bytes pruner's
// LRU-by-mtime order reflects reads, not just writes.  Callers need
// not hold c.mu; the corrupt-entry counter takes it internally.
func (c *Cache) readDisk(k Key) (Result, bool) {
	path := c.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		return Result{}, false
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		// The entry exists but cannot be parsed: still a miss (the
		// point just re-simulates), but a counted one, so operators of
		// long-lived shared stores can tell rot from cold.
		c.mu.Lock()
		c.stats.CorruptEntries++
		c.mu.Unlock()
		return Result{}, false
	}
	if c.maxBytes > 0 || c.maxAge > 0 {
		now := time.Now()
		_ = os.Chtimes(path, now, now)
	}
	return res, true
}

// writeDisk stores one key in the on-disk store via a same-directory
// rename, so concurrent writers of the same key leave a complete file.
// It returns the byte size written and touches no mutable cache state,
// so callers need not hold c.mu.
func (c *Cache) writeDisk(k Key, res Result) (int64, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), c.path(k)); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return int64(len(data)), nil
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.order.Len()
	return s
}

// Len returns the number of entries currently held in memory.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
