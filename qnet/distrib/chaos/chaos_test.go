package chaos

import (
	"testing"
	"time"
)

// TestScheduleDeterminism: two schedules with the same config must draw
// identical decision sequences — the reproducibility contract the soak
// test's per-seed runs depend on.
func TestScheduleDeterminism(t *testing.T) {
	a, b := New(Default(42)), New(Default(42))
	for i := 0; i < 200; i++ {
		if da, db := a.Dispatch(), b.Dispatch(); da != db {
			t.Fatalf("draw %d: %+v != %+v", i, da, db)
		}
		if fa, fb := a.Flap(), b.Flap(); fa != fb {
			t.Fatalf("flap draw %d: %v != %v", i, fa, fb)
		}
		if ma, mb := a.MissGet(), b.MissGet(); ma != mb {
			t.Fatalf("miss draw %d: %v != %v", i, ma, mb)
		}
		if pa, pb := a.DropPut(), b.DropPut(); pa != pb {
			t.Fatalf("drop draw %d: %v != %v", i, pa, pb)
		}
	}
	if sa, sb := a.Stats(), b.Stats(); sa != sb {
		t.Fatalf("stats diverged: %s != %s", sa, sb)
	}
}

// TestScheduleSeedsDiffer: different seeds must not replay the same
// schedule (probabilistically certain over enough draws).
func TestScheduleSeedsDiffer(t *testing.T) {
	a, b := New(Default(1)), New(Default(2))
	for i := 0; i < 200; i++ {
		if a.Dispatch() != b.Dispatch() {
			return
		}
	}
	t.Fatal("200 identical draws from different seeds")
}

// TestZeroConfigInjectsNothing: the zero Config is a no-op schedule.
func TestZeroConfigInjectsNothing(t *testing.T) {
	s := New(Config{Seed: 7})
	for i := 0; i < 100; i++ {
		d := s.Dispatch()
		if d.Delay != 0 || d.Refuse || d.TruncateAfter >= 0 || d.Duplicate {
			t.Fatalf("zero config injected %+v", d)
		}
		if s.Flap() || s.MissGet() || s.DropPut() {
			t.Fatal("zero config injected a probe or store fault")
		}
	}
	st := s.Stats()
	if st.Injected() != 0 {
		t.Fatalf("zero config stats: %s", st)
	}
	if st.Decisions != 400 {
		t.Fatalf("decisions %d, want 400", st.Decisions)
	}
}

// TestDefaultInjectsEveryClass: the Default config at rate ~0.1..0.3
// per class must inject every fault class within a few hundred draws,
// with Dispatch respecting the configured bounds.
func TestDefaultInjectsEveryClass(t *testing.T) {
	s := New(Default(3))
	for i := 0; i < 500; i++ {
		d := s.Dispatch()
		if d.Delay < 0 || d.Delay > 2*time.Millisecond {
			t.Fatalf("delay %v out of (0, MaxLatency]", d.Delay)
		}
		if d.TruncateAfter < -1 || d.TruncateAfter > 2 {
			t.Fatalf("truncate-after %d out of range", d.TruncateAfter)
		}
		s.Flap()
		s.MissGet()
		s.DropPut()
	}
	st := s.Stats()
	if st.Delays == 0 || st.Refusals == 0 || st.Truncations == 0 ||
		st.Duplicates == 0 || st.Flaps == 0 || st.StoreMisses == 0 || st.StoreDrops == 0 {
		t.Fatalf("a fault class never fired over 500 draws: %s", st)
	}
	if st.Injected() == 0 || st.Decisions != 2000 {
		t.Fatalf("stats: %s", st)
	}
}
